// The pluggable TE-scheme API (src/scheme/): registry invariants
// (duplicate/unsafe/unknown keys), scheme semantics (margin dependence,
// failure reactions, invcap reweighting), the fibbing round-trip of every
// built-in scheme's configuration, thread-count bit-identity of a
// six-scheme sweep, and the runner's dynamic coyote-bench/4 rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/dag_builder.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "failure/degrade.hpp"
#include "failure/evaluate.hpp"
#include "failure/scenario.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/ecmp.hpp"
#include "routing/propagation.hpp"
#include "scheme/registry.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::te {
namespace {

// ---------------------------------------------------------------------------
// Registry invariants.
// ---------------------------------------------------------------------------

TEST(SchemeRegistry, BuiltinHasThePaperFourAsDefaultsPlusExtensions) {
  const SchemeRegistry& reg = SchemeRegistry::builtin();
  ASSERT_EQ(reg.defaults().size(), 4u);
  const char* const expected[] = {"ecmp", "base", "oblivious", "partial"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_STREQ(reg.defaults()[i]->key(), expected[i]);
  }
  EXPECT_EQ(reg.all().size(), 6u);
  ASSERT_NE(reg.find("invcap-ecmp"), nullptr);
  ASSERT_NE(reg.find("semi-oblivious"), nullptr);
  // Only COYOTE-pk is margin-dependent; the OSPF family reconverges, the
  // COYOTE family repairs its DAGs.
  for (const Scheme* s : reg.all()) {
    EXPECT_EQ(s->marginDependent(), std::string(s->key()) == "partial")
        << s->key();
    const bool ospf_family = std::string(s->key()) == "ecmp" ||
                             std::string(s->key()) == "invcap-ecmp";
    EXPECT_EQ(s->reaction() == FailureReaction::kReconverge, ospf_family)
        << s->key();
  }
}

TEST(SchemeRegistry, DuplicateKeyRegistrationIsRejected) {
  SchemeRegistry reg;
  reg.add(makeEcmpScheme());
  EXPECT_THROW(reg.add(makeEcmpScheme()), std::invalid_argument);
  // The survivor is still registered exactly once.
  EXPECT_NE(reg.find("ecmp"), nullptr);
  EXPECT_EQ(reg.all().size(), 1u);
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

// A scheme with an arbitrary key, for registration-hygiene tests.
class KeyedScheme final : public Scheme {
 public:
  explicit KeyedScheme(std::string key) : key_(std::move(key)) {}
  const char* key() const override { return key_.c_str(); }
  const char* display() const override { return "keyed"; }
  const char* describe() const override { return "test scheme"; }
  routing::RoutingConfig compute(const SchemeContext& ctx) const override {
    return routing::ecmpConfig(ctx.g, ctx.dags);
  }

 private:
  std::string key_;
};

TEST(SchemeRegistry, UnsafeAndReservedKeysAreRejected) {
  SchemeRegistry reg;
  // Keys become JSON row fields and CLI selectors: enforce the charset...
  for (const char* bad : {"", "Bad", "with_underscore", "sp ace", "ümlaut"}) {
    EXPECT_THROW(reg.add(std::make_unique<KeyedScheme>(bad)),
                 std::invalid_argument)
        << bad;
  }
  // ...and reject collisions with the runner's fixed row fields, which a
  // scheme ratio would silently overwrite in the emitted JSON.
  for (const char* reserved : {"margin", "network", "label", "unroutable"}) {
    EXPECT_THROW(reg.add(std::make_unique<KeyedScheme>(reserved)),
                 std::invalid_argument)
        << reserved;
  }
  reg.add(std::make_unique<KeyedScheme>("my-scheme-2"));
  EXPECT_NE(reg.find("my-scheme-2"), nullptr);
}

TEST(SchemeRegistry, UnknownKeyIsAHardErrorNamingTheKey) {
  const SchemeRegistry& reg = SchemeRegistry::builtin();
  try {
    (void)reg.parseList("ecmp,no-such-scheme");
    FAIL() << "unknown scheme key must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-scheme"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)reg.resolve({"partial", "bogus"}),
               std::invalid_argument);
  // A repeated key would sweep the scheme twice and emit duplicate JSON
  // row fields: rejected, naming the key.
  try {
    (void)reg.parseList("ecmp,partial,ecmp");
    FAIL() << "duplicate selection must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate scheme 'ecmp'"),
              std::string::npos)
        << e.what();
  }
}

TEST(SchemeRegistry, ParseListSelectsAndDefaults) {
  const SchemeRegistry& reg = SchemeRegistry::builtin();
  const auto picked = reg.parseList(" semi-oblivious , ecmp");
  ASSERT_EQ(picked.size(), 2u);  // order preserved, not registry order
  EXPECT_STREQ(picked[0]->key(), "semi-oblivious");
  EXPECT_STREQ(picked[1]->key(), "ecmp");
  // Tokens are trimmed, never space-stripped: an embedded space stays
  // part of the (unknown) key instead of silently resolving.
  EXPECT_THROW((void)reg.parseList("ecm p,base"), std::invalid_argument);
  // Empty selection falls back to the paper's four.
  const auto defaults = reg.parseList("");
  ASSERT_EQ(defaults.size(), 4u);
  EXPECT_STREQ(defaults[0]->key(), "ecmp");
}

// ---------------------------------------------------------------------------
// Scheme semantics.
// ---------------------------------------------------------------------------

TEST(Schemes, InverseCapacityReweightingMatchesTheGraphHelper) {
  // randomBackbone carries heterogeneous capacities and already applies
  // setInverseCapacityWeights(), so reweighting must be a no-op there --
  // which also makes invcap-ecmp coincide with plain ECMP on it.
  const Graph g = topo::randomBackbone(12, 3.0, 7);
  const Graph rw = inverseCapacityReweighted(g);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EXPECT_NEAR(rw.edge(e).weight, g.edge(e).weight, 1e-12);
  }
  // A failed (zero-capacity) edge keeps its weight and does not poison
  // the max-capacity scale.
  Graph h = g;
  h.setCapacity(0, 0.0);
  const Graph hw = inverseCapacityReweighted(h);
  EXPECT_EQ(hw.edge(0).weight, h.edge(0).weight);
  for (EdgeId e = 1; e < h.numEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(hw.edge(e).weight));
    EXPECT_GT(hw.edge(e).weight, 0.0);
  }
}

TEST(Schemes, InvcapEcmpEqualsEcmpWhenWeightsAlreadyInverseCapacity) {
  const Graph g = topo::makeZoo("Abilene");  // zoo sets invcap weights
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const SchemeContext ctx{g,       dags,   base, core::CoyoteOptions{},
                          nullptr, nullptr};
  const auto ecmp =
      SchemeRegistry::builtin().find("ecmp")->compute(ctx);
  const auto invcap =
      SchemeRegistry::builtin().find("invcap-ecmp")->compute(ctx);
  // Same flows on every edge for any demand -> same loads; compare the
  // induced per-edge loads of the base matrix (the DAG sets differ in
  // object identity, so compare behavior, not ratios_ layout).
  const auto l1 = routing::computeLoads(g, ecmp, base);
  const auto l2 = routing::computeLoads(g, invcap, base);
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t e = 0; e < l1.size(); ++e) {
    EXPECT_NEAR(l1[e], l2[e], 1e-12) << e;
  }
}

TEST(Schemes, SemiObliviousSitsBetweenObliviousAndBaseOnTheBaseMatrix) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);
  core::CoyoteOptions copt;
  copt.splitting.iterations = 200;
  const SchemeContext ctx{g, dags, base, copt, nullptr, nullptr};
  const SchemeRegistry& reg = SchemeRegistry::builtin();

  routing::PerformanceEvaluator eval(g, dags);
  eval.addMatrix(base);
  const double r_obl = eval.ratioFor(reg.find("oblivious")->compute(ctx));
  const double r_semi =
      eval.ratioFor(reg.find("semi-oblivious")->compute(ctx));
  const double r_base = eval.ratioFor(reg.find("base")->compute(ctx));
  // Re-optimizing the oblivious splits for the base matrix can only help
  // on the base matrix, and can at best reach the in-DAG optimum.
  EXPECT_LE(r_semi, r_obl + 1e-9);
  EXPECT_GE(r_semi, r_base - 1e-7);
  EXPECT_NEAR(r_base, 1.0, 1e-7);  // 'base' is the optimum it is named for
}

TEST(Schemes, ReconvergeIsOnlyForOspfFamilySchemes) {
  const Graph g = topo::runningExample();
  const SchemeRegistry& reg = SchemeRegistry::builtin();
  EXPECT_THROW((void)reg.find("base")->reconverge(g), std::logic_error);
  EXPECT_THROW((void)reg.find("partial")->reconverge(g), std::logic_error);
  EXPECT_NO_THROW((void)reg.find("ecmp")->reconverge(g));
  EXPECT_NO_THROW((void)reg.find("invcap-ecmp")->reconverge(g));
}

TEST(Schemes, InvcapReconvergenceUsesSubstrateWeightsOnTheSurvivors) {
  // Triangle a-b, b-c, a-c with a fat direct a-c link but weights that
  // make the two-hop path the configured-weight shortest path. After
  // failing a-b, invcap-ECMP must route a->c on the (invcap-cheap) direct
  // link; weight-faithful ECMP reconvergence on the configured weights
  // would see cost 1 vs the detour's infinite cost too -- so distinguish
  // on the *intact* network instead, then check reconvergence sanity.
  Graph g;
  const NodeId a = g.addNode("a");
  const NodeId b = g.addNode("b");
  const NodeId c = g.addNode("c");
  g.addLink(a, b, 10.0, 1.0);
  g.addLink(b, c, 10.0, 1.0);
  const EdgeId ac = g.addLink(a, c, 100.0, 10.0);  // fat but high weight

  const auto dags = core::augmentedDagsShared(g);
  tm::TrafficMatrix base(g.numNodes());
  base.set(a, c, 1.0);
  const SchemeContext ctx{g,       dags,   base, core::CoyoteOptions{},
                          nullptr, nullptr};
  const SchemeRegistry& reg = SchemeRegistry::builtin();

  // Configured weights: a->c goes a-b-c (cost 2 < 10). Inverse-capacity
  // weights: direct a-c is the cheapest (10/100 scaled vs two 10/10 hops).
  const auto ecmp = reg.find("ecmp")->compute(ctx);
  const auto invcap = reg.find("invcap-ecmp")->compute(ctx);
  EXPECT_NEAR(routing::computeLoads(g, ecmp, base)[ac], 0.0, 1e-12);
  EXPECT_NEAR(routing::computeLoads(g, invcap, base)[ac], 1.0, 1e-12);

  // Fail b-c: both OSPF schemes reconverge onto the direct link.
  const EdgeId bc = *g.findEdge(b, c);
  const failure::FailureScenario f{"b-c",
                                   {std::min(bc, g.edge(bc).reverse)}};
  const Graph degraded = failure::degradedGraph(g, f);
  for (const char* key : {"ecmp", "invcap-ecmp"}) {
    const auto post = reg.find(key)->reconverge(degraded);
    EXPECT_NEAR(routing::computeLoads(degraded, post, base)[ac], 1.0, 1e-12)
        << key;
  }
}

// ---------------------------------------------------------------------------
// Fibbing round-trip: every built-in scheme's intact configuration is
// realizable with OSPF lies on its substrate -- synthesize the lies, re-run
// the OSPF model's SPF, and verify the FIBs realize the (apportioned)
// config. For the OSPF-family schemes the plan must need no lies at all.
// ---------------------------------------------------------------------------

TEST(Schemes, EveryBuiltinConfigRoundTripsThroughSynthesizedLies) {
  constexpr int kBudget = 6;
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  core::CoyoteOptions copt;
  copt.splitting.iterations = 120;

  for (const Scheme* s : SchemeRegistry::builtin().all()) {
    SCOPED_TRACE(s->key());
    routing::PerformanceEvaluator pool(g, dags, copt.lp);
    tm::PoolOptions popt;
    popt.source_hotspots = false;
    popt.random_corners = 2;
    pool.addPool(tm::cornerPool(box, popt));
    const SchemeContext ctx{g, dags, base, copt, &box, &pool};
    const routing::RoutingConfig cfg = s->compute(ctx);

    // Lies are priced against the scheme's OSPF substrate (invcap-ecmp
    // re-weights; everyone else keeps the configured weights).
    const Graph substrate = s->ospfSubstrate(g);
    fib::OspfModel model(substrate);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      model.advertisePrefix(t, t);
      const fib::LiePlan plan =
          fib::synthesizeLies(substrate, cfg, t, t, kBudget);
      fib::applyPlan(model, plan);
      EXPECT_TRUE(fib::verifyRealization(model, cfg, t, t, kBudget))
          << "dest " << g.nodeName(t);
      EXPECT_TRUE(model.forwardingIsLoopFree(t)) << "dest " << g.nodeName(t);
    }
    if (s->reaction() == FailureReaction::kReconverge) {
      // Plain OSPF/ECMP over the substrate weights needs no lies.
      EXPECT_EQ(model.fakeNodeCount(), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Thread-count bit-identity: a sweep over all six schemes on the smoke
// scenario's topology must produce identical rows for 1/2/8 threads.
// ---------------------------------------------------------------------------

TEST(Schemes, SixSchemeSweepIsBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);

  std::vector<exp::SchemeRow> rows;
  for (const unsigned threads : {1u, 2u, 8u}) {
    exp::SweepOptions opt;
    opt.coyote.splitting.iterations = 150;
    opt.threads = threads;
    const exp::NetworkSweep sweep(g, dags, base, opt,
                                  SchemeRegistry::builtin().all());
    ASSERT_EQ(sweep.schemes().size(), 6u);
    rows.push_back(sweep.run(2.0));
  }
  const exp::SchemeRow& ref = rows.front();
  ASSERT_EQ(ref.ratio.size(), 6u);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < ref.ratio.size(); ++i) {
      // Bit-identical, not merely close.
      EXPECT_EQ(ref.ratio[i], rows[r].ratio[i]) << "scheme " << i;
    }
    EXPECT_EQ(ref.lp_solves, rows[r].lp_solves);
    EXPECT_EQ(ref.lp_pivots, rows[r].lp_pivots);
    EXPECT_EQ(ref.scheme_lp_pivots, rows[r].scheme_lp_pivots);
  }
}

// ---------------------------------------------------------------------------
// Sweep + failure-evaluator integration over custom scheme lists.
// ---------------------------------------------------------------------------

TEST(Schemes, NetworkSweepRespectsTheSchemeListOrder) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);
  exp::SweepOptions opt;
  opt.coyote.splitting.iterations = 120;

  const auto schemes =
      SchemeRegistry::builtin().parseList("partial,ecmp");
  const exp::NetworkSweep sweep(g, dags, base, opt, schemes);
  const exp::SchemeRow row = sweep.run(2.0);
  ASSERT_EQ(row.ratio.size(), 2u);
  // COYOTE-pk is never worse than ECMP on the optimization pool.
  EXPECT_LE(row.ratio[0], row.ratio[1] + 1e-9);
  // intactRouting serves margin-independent schemes only.
  EXPECT_NO_THROW((void)sweep.intactRouting(1));
  EXPECT_THROW((void)sweep.intactRouting(0), std::logic_error);
}

TEST(Schemes, FailureEvaluatorSweepsCustomListsWithKeyedStats) {
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::uniformMatrix(g, 1.0);

  failure::FailureEvalOptions opt;
  opt.coyote.splitting.iterations = 120;
  opt.pool.random_corners = 2;
  opt.pool.pair_hotspots = 2;
  opt.schemes = SchemeRegistry::builtin().parseList(
      "ecmp,invcap-ecmp,semi-oblivious");
  const failure::FailureEvaluator eval(g, dags, base, opt);
  const failure::FailureSweepResult res =
      eval.evaluate(failure::singleLinkFailures(g));

  ASSERT_EQ(res.schemes.size(), 3u);
  EXPECT_EQ(res.schemes[0].first, "ecmp");
  EXPECT_EQ(res.schemes[1].first, "invcap-ecmp");
  EXPECT_EQ(res.schemes[2].first, "semi-oblivious");
  EXPECT_EQ(res.evaluated, 5);
  for (const failure::FailureOutcome& o : res.outcomes) {
    ASSERT_EQ(o.ratio.size(), 3u);
    // Both OSPF schemes reconverge: always routable on a connected graph,
    // and on this all-unit-capacity network they coincide.
    EXPECT_TRUE(o.routable[0]) << o.label;
    EXPECT_TRUE(o.routable[1]) << o.label;
    EXPECT_EQ(o.ratio[0], o.ratio[1]) << o.label;
  }
  EXPECT_NO_THROW((void)eval.intactRouting("semi-oblivious"));
  EXPECT_THROW((void)eval.intactRouting("partial"), std::invalid_argument);
  // Reconverge schemes keep no intact config (their post-failure routing
  // is recomputed from the degraded graph alone).
  EXPECT_THROW((void)eval.intactRouting("ecmp"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Runner integration: dynamic coyote-bench/4 rows.
// ---------------------------------------------------------------------------

TEST(SchemeRunner, EmitsSchemaFourRowsForSelectedSchemes) {
  const exp::Scenario* s =
      exp::ScenarioRegistry::global().find("running-example");
  ASSERT_NE(s, nullptr);
  exp::RunOptions opt;
  opt.print = false;
  opt.schemes = {"invcap-ecmp", "semi-oblivious"};
  const exp::ExperimentRunner runner(opt);
  const exp::ScenarioResult result = runner.run(*s);
  EXPECT_TRUE(result.ok);

  const util::json::Value& doc = result.document;
  EXPECT_EQ(doc.stringOr("schema", ""), "coyote-bench/6");
  const util::json::Value* schemes = doc.find("schemes");
  ASSERT_NE(schemes, nullptr);
  ASSERT_EQ(schemes->asArray().size(), 2u);
  const util::json::Value* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_FALSE(rows->asArray().empty());
  for (const util::json::Value& row : rows->asArray()) {
    EXPECT_GE(row.numberOr("invcap-ecmp", -1.0), 1.0 - 1e-7);
    EXPECT_GE(row.numberOr("semi-oblivious", -1.0), 1.0 - 1e-7);
    EXPECT_EQ(row.find("ecmp"), nullptr);   // not selected, not emitted
    EXPECT_EQ(row.find("partial"), nullptr);
    // Per-scheme LP telemetry rides under lp_-prefixed (gate-exempt) keys.
    const util::json::Value* pivots = row.find("lp_scheme_pivots");
    ASSERT_NE(pivots, nullptr);
    EXPECT_NE(pivots->find("semi-oblivious"), nullptr);
  }
}

TEST(SchemeRunner, MarginGridComesFromIntegerSteps) {
  // 1..5 in 0.5 steps: naive `m += 0.5` accumulation can drop 5.0; the
  // integer-step generator must not.
  const auto grid = exp::marginGrid(5.0, true);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_EQ(grid.front(), 1.0);
  EXPECT_EQ(grid.back(), 5.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], 1.0 + 0.5 * static_cast<double>(i));
  }
  const auto quick = exp::marginGrid(3.0, false);
  ASSERT_EQ(quick.size(), 3u);
  EXPECT_EQ(quick[2], 3.0);
}

}  // namespace
}  // namespace coyote::te
