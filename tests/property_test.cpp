// Randomized and cross-cutting property tests.
//
// These check invariants rather than specific values: LP solutions satisfy
// every constraint they were given (the class of bug that silently corrupts
// every downstream number), evaluation is deterministic, emulated delivery
// is conservative, and the corpus is reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "core/local_search.hpp"
#include "core/splitting_optimizer.hpp"
#include "lp/lp.hpp"
#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/propagation.hpp"
#include "routing/worst_case.hpp"
#include "sim/fluid.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/parser.hpp"
#include "topo/zoo.hpp"
#include "util/env.hpp"

namespace coyote {
namespace {

// ---------------------------------------------------------------------------
// LP: every returned optimum must satisfy every constraint.
// ---------------------------------------------------------------------------

struct RandomLp {
  lp::LpProblem problem{lp::Sense::kMaximize};
  std::vector<std::vector<lp::Term>> rows;
  std::vector<lp::Rel> rels;
  std::vector<double> rhs;
};

RandomLp makeRandomLp(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nvars(2, 5);
  std::uniform_int_distribution<int> nrows(2, 8);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> pos(0.5, 5.0);
  std::uniform_int_distribution<int> rel3(0, 2);

  RandomLp out;
  const int n = nvars(rng);
  for (int j = 0; j < n; ++j) out.problem.addVar(coef(rng));
  // A bounding box keeps every instance bounded.
  for (int j = 0; j < n; ++j) {
    out.rows.push_back({lp::Term{j, 1.0}});
    out.rels.push_back(lp::Rel::kLe);
    out.rhs.push_back(pos(rng));
  }
  const int m = nrows(rng);
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> row;
    for (int j = 0; j < n; ++j) {
      const double c = coef(rng);
      if (std::abs(c) > 0.3) row.push_back({j, c});
    }
    if (row.empty()) continue;
    const lp::Rel rel = static_cast<lp::Rel>(rel3(rng));
    // Make >=/= rows satisfiable at the origin-ish region.
    const double b = (rel == lp::Rel::kLe) ? pos(rng)
                     : (rel == lp::Rel::kGe) ? -pos(rng)
                                             : 0.0;
    out.rows.push_back(row);
    out.rels.push_back(rel);
    out.rhs.push_back(b);
  }
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    out.problem.addConstraint(out.rows[i], out.rels[i], out.rhs[i]);
  }
  return out;
}

class LpFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpFeasibility, OptimaSatisfyEveryConstraint) {
  const RandomLp inst = makeRandomLp(GetParam());
  const lp::LpResult res = lp::solve(inst.problem);
  if (res.status != lp::Status::kOptimal) {
    // Infeasible is a legal outcome for random >=-rows; unbounded is not
    // (all variables boxed above and >= 0).
    EXPECT_EQ(res.status, lp::Status::kInfeasible);
    return;
  }
  constexpr double kTol = 1e-6;
  for (std::size_t i = 0; i < inst.rows.size(); ++i) {
    double lhs = 0.0;
    for (const auto& t : inst.rows[i]) lhs += t.coef * res.x[t.var];
    switch (inst.rels[i]) {
      case lp::Rel::kLe:
        EXPECT_LE(lhs, inst.rhs[i] + kTol) << "row " << i;
        break;
      case lp::Rel::kGe:
        EXPECT_GE(lhs, inst.rhs[i] - kTol) << "row " << i;
        break;
      case lp::Rel::kEq:
        EXPECT_NEAR(lhs, inst.rhs[i], kTol) << "row " << i;
        break;
    }
  }
  for (const double v : res.x) EXPECT_GE(v, -1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFeasibility,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Worst-case oracle invariants.
// ---------------------------------------------------------------------------

class OracleInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleInvariants, WorstDemandIsInTheScaledBox) {
  const Graph g = topo::randomBackbone(8, 3.0, GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);
  const routing::WorstCaseResult wc = routing::findWorstCaseDemand(g, cfg, &box);
  ASSERT_GT(wc.ratio, 0.0);
  // There must exist lambda > 0 with lambda*lo <= d <= lambda*hi:
  // max over pairs of d/hi must not exceed min over pairs of d/lo.
  double lam_min = 0.0, lam_max = std::numeric_limits<double>::infinity();
  for (NodeId s = 0; s < g.numNodes(); ++s) {
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      if (s == t || box.hi.at(s, t) <= 0.0) continue;
      lam_min = std::max(lam_min, wc.demand.at(s, t) / box.hi.at(s, t));
      lam_max = std::min(lam_max, wc.demand.at(s, t) / box.lo.at(s, t));
    }
  }
  EXPECT_LE(lam_min, lam_max * (1.0 + 1e-6));
  // And the demand is routable within the DAG capacities.
  EXPECT_LE(routing::optimalUtilization(g, *dags, wc.demand), 1.0 + 1e-6);
  // The reported ratio is reproducible by plain propagation.
  EXPECT_NEAR(routing::maxLinkUtilization(g, cfg, wc.demand), wc.ratio, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleInvariants,
                         ::testing::Values(3u, 7u, 21u, 42u));

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(Determinism, ZooIsReproducible) {
  for (const auto& name : topo::zooNames()) {
    EXPECT_EQ(topo::serializeTopologyString(topo::makeZoo(name)),
              topo::serializeTopologyString(topo::makeZoo(name)))
        << name;
  }
}

TEST(Determinism, OptimizerIsReproducible) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  routing::PerformanceEvaluator eval(g, dags);
  tm::PoolOptions popt;
  popt.random_corners = 3;
  eval.addPool(tm::cornerPool(
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0), popt));
  core::SplittingOptions sopt;
  sopt.iterations = 120;
  const auto run = [&] {
    return core::optimizeSplitting(
        g, eval, routing::RoutingConfig::uniform(g, dags), sopt);
  };
  const auto a = run();
  const auto b = run();
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (const EdgeId e : (*dags)[t].edges()) {
      EXPECT_DOUBLE_EQ(a.ratio(t, e), b.ratio(t, e));
    }
  }
}

TEST(Determinism, LocalSearchIsReproducible) {
  const Graph g = topo::makeZoo("Abilene");
  const tm::DemandBounds box =
      tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
  core::LocalSearchOptions opt;
  opt.max_rounds = 2;
  opt.max_moves_per_round = 6;
  const auto a = core::localSearchWeights(g, box, opt);
  const auto b = core::localSearchWeights(g, box, opt);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

// ---------------------------------------------------------------------------
// Fluid-simulator conservativeness.
// ---------------------------------------------------------------------------

class FluidConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidConservation, DeliveredNeverExceedsSent) {
  std::mt19937_64 rng(GetParam());
  const Graph g = topo::randomBackbone(7, 3.0, GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  sim::FluidNetwork net(g);
  std::uniform_real_distribution<double> rate(0.1, 4.0);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    net.setPrefixOwner(t, t);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      std::vector<std::pair<EdgeId, double>> splits;
      for (const EdgeId e : (*dags)[t].outEdges(u)) {
        splits.emplace_back(e, cfg.ratio(t, e));
      }
      if (!splits.empty()) net.setForwarding(t, u, std::move(splits));
    }
  }
  for (int k = 0; k < 6; ++k) {
    const NodeId s = static_cast<NodeId>(rng() % g.numNodes());
    const NodeId t = static_cast<NodeId>(rng() % g.numNodes());
    if (s == t) continue;
    net.addFlow({s, t, rate(rng), 0.0, 3.0});
  }
  for (const auto& st : net.run(3.0, 0.5)) {
    EXPECT_LE(st.delivered, st.sent + 1e-9);
    EXPECT_GE(st.delivered, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidConservation,
                         ::testing::Values(5u, 6u, 8u, 13u));

// ---------------------------------------------------------------------------
// Scheme-dominance sweeps across the corpus (cheap networks only).
// ---------------------------------------------------------------------------

class SchemeDominance : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeDominance, CoyoteAtMarginOneIsOptimal) {
  const Graph g = topo::makeZoo(GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const core::CoyoteResult pk =
      core::coyoteWithBounds(g, dags, tm::marginBounds(base, 1.0), {});
  EXPECT_NEAR(pk.pool_ratio, 1.0, 1e-5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Zoo, SchemeDominance,
                         ::testing::Values("Abilene", "NSF", "Germany",
                                           "Gambia", "GRNet"));

// ---------------------------------------------------------------------------
// COYOTE_FULL=1 sweeps (the ctest `full' label; skipped in quick runs).
// ---------------------------------------------------------------------------

bool fullSweepsEnabled() { return util::envFlag("COYOTE_FULL"); }

TEST(FullSweep, CoyoteAtMarginOneIsOptimalAcrossCorpus) {
  if (!fullSweepsEnabled()) {
    GTEST_SKIP() << "set COYOTE_FULL=1 (ctest label `full') for the sweep";
  }
  for (const std::string& name : topo::zooNames()) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
    const core::CoyoteResult pk =
        core::coyoteWithBounds(g, dags, tm::marginBounds(base, 1.0), {});
    EXPECT_NEAR(pk.pool_ratio, 1.0, 1e-5) << name;
  }
}

TEST(FullSweep, LpOptimaSatisfyConstraintsManySeeds) {
  if (!fullSweepsEnabled()) {
    GTEST_SKIP() << "set COYOTE_FULL=1 (ctest label `full') for the sweep";
  }
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const RandomLp rlp = makeRandomLp(seed);
    const lp::LpResult res = lp::solve(rlp.problem);
    if (res.status != lp::Status::kOptimal) continue;
    for (std::size_t i = 0; i < rlp.rows.size(); ++i) {
      double lhs = 0.0;
      for (const auto& term : rlp.rows[i]) lhs += term.coef * res.x[term.var];
      switch (rlp.rels[i]) {
        case lp::Rel::kLe: EXPECT_LE(lhs, rlp.rhs[i] + 1e-6); break;
        case lp::Rel::kGe: EXPECT_GE(lhs, rlp.rhs[i] - 1e-6); break;
        case lp::Rel::kEq: EXPECT_NEAR(lhs, rlp.rhs[i], 1e-6); break;
      }
    }
  }
}

}  // namespace
}  // namespace coyote
