// Cross-module integration tests: the full COYOTE pipeline from uncertainty
// bounds to verified OSPF lies and emulated traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "core/coyote.hpp"
#include "core/dag_builder.hpp"
#include "core/local_search.hpp"
#include "fibbing/lie_synthesis.hpp"
#include "fibbing/ospf_model.hpp"
#include "routing/ecmp.hpp"
#include "routing/propagation.hpp"
#include "routing/worst_case.hpp"
#include "sim/fluid.hpp"
#include "tm/traffic_matrix.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"
#include "util/env.hpp"

namespace coyote {
namespace {

TEST(Pipeline, BoundsToVerifiedLies) {
  // bounds -> DAGs -> splitting -> quantization -> lies -> verified FIBs.
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  core::CoyoteOptions copt;
  copt.splitting.iterations = 250;
  const core::CoyoteResult res = core::coyoteWithBounds(g, dags, box, copt);

  constexpr int kBudget = 5;
  const routing::RoutingConfig wire = fib::quantizeConfig(g, res.routing, kBudget);
  wire.validate(g);

  fib::OspfModel model(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    model.advertisePrefix(t, t);
    fib::applyPlan(model, fib::synthesizeLies(g, wire, t, t, kBudget));
    ASSERT_TRUE(fib::verifyRealization(model, wire, t, t, kBudget))
        << "dest " << g.nodeName(t);
    ASSERT_TRUE(model.forwardingIsLoopFree(t));
  }

  // The wire config's performance stays close to the ideal one.
  routing::PerformanceEvaluator eval(g, dags);
  tm::PoolOptions popt;
  popt.source_hotspots = false;
  popt.random_corners = 4;
  eval.addPool(tm::cornerPool(box, popt));
  EXPECT_LE(eval.ratioFor(wire), eval.ratioFor(res.routing) + 0.15);
}

TEST(Pipeline, FluidEmulationMatchesPropagation) {
  // Install a COYOTE config in the fluid emulator (one prefix per
  // destination) and check that a demand matrix routable below capacity is
  // delivered losslessly, matching the propagation model's loads.
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);

  tm::TrafficMatrix d = tm::gravityMatrix(g, 10.0);
  const double mxlu = routing::maxLinkUtilization(g, cfg, d);
  d.scale(0.9 / mxlu);  // now strictly below every capacity

  sim::FluidNetwork net(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    net.setPrefixOwner(t, t);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      std::vector<std::pair<EdgeId, double>> splits;
      for (const EdgeId e : (*dags)[t].outEdges(u)) {
        splits.emplace_back(e, cfg.ratio(t, e));
      }
      if (!splits.empty()) net.setForwarding(t, u, std::move(splits));
    }
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      if (s != t && d.at(s, t) > 0.0) {
        net.addFlow({s, t, d.at(s, t), 0.0, 1.0});
      }
    }
  }
  const auto stats = net.run(1.0, 1.0);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_NEAR(stats[0].sent, d.total(), 1e-6);
  EXPECT_NEAR(stats[0].dropRate(), 0.0, 1e-9);
}

TEST(Pipeline, FluidEmulationDropsAtTheBottleneck) {
  // Scale the same demand matrix to 2x the bottleneck: the emulator must
  // drop traffic; a loose sanity band relates drop rate to over-utilization.
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  tm::TrafficMatrix d = tm::gravityMatrix(g, 10.0);
  d.scale(2.0 / routing::maxLinkUtilization(g, cfg, d));

  sim::FluidNetwork net(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    net.setPrefixOwner(t, t);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      if (u == t) continue;
      std::vector<std::pair<EdgeId, double>> splits;
      for (const EdgeId e : (*dags)[t].outEdges(u)) {
        splits.emplace_back(e, cfg.ratio(t, e));
      }
      if (!splits.empty()) net.setForwarding(t, u, std::move(splits));
    }
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      if (s != t && d.at(s, t) > 0.0) {
        net.addFlow({s, t, d.at(s, t), 0.0, 1.0});
      }
    }
  }
  const auto stats = net.run(1.0, 1.0);
  EXPECT_GT(stats[0].dropRate(), 0.0);
  EXPECT_LT(stats[0].dropRate(), 0.5);  // only the bottleneck links drop
}

TEST(Pipeline, PoolRatioLowerBoundsExactRatio) {
  // The corner pool is a subset of the box, so the exact slave-LP worst
  // case can only be worse (greater or equal).
  const Graph g = topo::runningExample();
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = [&] {
    tm::TrafficMatrix d(g.numNodes());
    d.set(*g.findNode("s1"), *g.findNode("t"), 1.0);
    d.set(*g.findNode("s2"), *g.findNode("t"), 0.5);
    d.set(*g.findNode("v"), *g.findNode("t"), 0.25);
    return d;
  }();
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  routing::PerformanceEvaluator pool(g, dags);
  pool.addPool(tm::cornerPool(box, {}));
  const auto cfg = routing::RoutingConfig::uniform(g, dags);
  const double pool_ratio = pool.ratioFor(cfg);
  const double exact = routing::findWorstCaseDemand(g, cfg, &box).ratio;
  EXPECT_GE(exact, pool_ratio - 1e-6);
}

TEST(Pipeline, LocalSearchFeedsCoyote) {
  // Fig. 9 pipeline for one margin: tuned weights -> augmented DAGs ->
  // ECMP vs COYOTE on the same pool.
  const Graph base_graph = topo::makeZoo("Abilene");
  const tm::TrafficMatrix base = tm::bimodalMatrix(base_graph, {}, 31, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);

  core::LocalSearchOptions ls;
  ls.max_rounds = 2;
  ls.max_moves_per_round = 8;
  const core::LocalSearchResult found =
      core::localSearchWeights(base_graph, box, ls);

  Graph g = base_graph;
  for (EdgeId e = 0; e < g.numEdges(); ++e) g.setWeight(e, found.weights[e]);
  const auto dags = core::augmentedDagsShared(g);
  routing::PerformanceEvaluator pool(g, dags);
  tm::PoolOptions popt;
  popt.source_hotspots = false;
  popt.random_corners = 4;
  pool.addPool(tm::cornerPool(box, popt));

  core::CoyoteOptions copt;
  copt.splitting.iterations = 200;
  const core::CoyoteResult pk = core::optimizeAgainstPool(g, pool, &box, copt);
  EXPECT_LE(pk.pool_ratio,
            pool.ratioFor(routing::ecmpConfig(g, dags)) + 1e-9);
}

class RandomBackbonePipeline : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomBackbonePipeline, CoyoteNeverWorseThanEcmp) {
  const Graph g = topo::randomBackbone(11, 3.0, GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix base = tm::gravityMatrix(g, 1.0);
  const tm::DemandBounds box = tm::marginBounds(base, 2.0);
  routing::PerformanceEvaluator pool(g, dags);
  tm::PoolOptions popt;
  popt.source_hotspots = false;
  popt.random_corners = 3;
  popt.seed = GetParam();
  pool.addPool(tm::cornerPool(box, popt));
  core::CoyoteOptions copt;
  copt.splitting.iterations = 150;
  const core::CoyoteResult pk = core::optimizeAgainstPool(g, pool, &box, copt);
  EXPECT_LE(pk.pool_ratio,
            pool.ratioFor(routing::ecmpConfig(g, dags)) + 1e-9)
      << "seed " << GetParam();
  // And the lies for the result verify on the OSPF model.
  const auto wire = fib::quantizeConfig(g, pk.routing, 6);
  fib::OspfModel model(g);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    model.advertisePrefix(t, t);
    fib::applyPlan(model, fib::synthesizeLies(g, wire, t, t, 6));
    EXPECT_TRUE(fib::verifyRealization(model, wire, t, t, 6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBackbonePipeline,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// COYOTE_FULL=1 sweep (the ctest `full' label; skipped in quick runs).
// ---------------------------------------------------------------------------

TEST(FullSweep, BoundsToVerifiedLiesAcrossCorpus) {
  if (!util::envFlag("COYOTE_FULL")) {
    GTEST_SKIP() << "set COYOTE_FULL=1 (ctest label `full') for the sweep";
  }
  // The Abilene pipeline check of Pipeline.BoundsToVerifiedLies, across
  // every corpus backbone with a reduced iteration budget.
  for (const std::string& name : topo::zooNames()) {
    const Graph g = topo::makeZoo(name);
    const auto dags = core::augmentedDagsShared(g);
    const tm::DemandBounds box =
        tm::marginBounds(tm::gravityMatrix(g, 1.0), 2.0);
    core::CoyoteOptions copt;
    copt.splitting.iterations = 60;
    const core::CoyoteResult res = core::coyoteWithBounds(g, dags, box, copt);
    constexpr int kBudget = 5;
    const routing::RoutingConfig wire =
        fib::quantizeConfig(g, res.routing, kBudget);
    wire.validate(g);
    fib::OspfModel model(g);
    for (NodeId t = 0; t < g.numNodes(); ++t) {
      model.advertisePrefix(t, t);
      fib::applyPlan(model, fib::synthesizeLies(g, wire, t, t, kBudget));
      ASSERT_TRUE(fib::verifyRealization(model, wire, t, t, kBudget))
          << name << " dest " << g.nodeName(t);
      ASSERT_TRUE(model.forwardingIsLoopFree(t)) << name;
    }
  }
}

}  // namespace
}  // namespace coyote
