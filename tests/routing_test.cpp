#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dag_builder.hpp"
#include "routing/config.hpp"
#include "routing/ecmp.hpp"
#include "routing/evaluator.hpp"
#include "routing/optu.hpp"
#include "routing/propagation.hpp"
#include "routing/stretch.hpp"
#include "routing/worst_case.hpp"
#include "topo/generator.hpp"
#include "topo/zoo.hpp"

namespace coyote::routing {
namespace {

const double kGolden = (std::sqrt(5.0) - 1.0) / 2.0;  // ~0.618

/// The Fig. 1c DAG of the running example: s1->{s2,v}, s2->{v,t}, v->t,
/// with the given splits at s1 and s2.
struct RunningExample {
  Graph g = topo::runningExample();
  NodeId s1, s2, v, t;
  std::shared_ptr<const DagSet> dags;

  RunningExample() {
    s1 = *g.findNode("s1");
    s2 = *g.findNode("s2");
    v = *g.findNode("v");
    t = *g.findNode("t");
    dags = core::augmentedDagsShared(g);
  }

  RoutingConfig config(double phi_s1s2, double phi_s2t) const {
    RoutingConfig cfg(g, dags);
    cfg.setRatio(t, *g.findEdge(s1, s2), phi_s1s2);
    cfg.setRatio(t, *g.findEdge(s1, v), 1.0 - phi_s1s2);
    cfg.setRatio(t, *g.findEdge(s2, t), phi_s2t);
    cfg.setRatio(t, *g.findEdge(s2, v), 1.0 - phi_s2t);
    cfg.setRatio(t, *g.findEdge(v, t), 1.0);
    // Other destinations: equal split (irrelevant for t-only demands).
    RoutingConfig uni = RoutingConfig::uniform(g, dags);
    for (NodeId d = 0; d < g.numNodes(); ++d) {
      if (d == t) continue;
      for (const EdgeId e : (*dags)[d].edges()) {
        cfg.setRatio(d, e, uni.ratio(d, e));
      }
    }
    cfg.validate(g);
    return cfg;
  }

  tm::TrafficMatrix demand(double d1, double d2) const {
    tm::TrafficMatrix d(g.numNodes());
    if (d1 > 0) d.set(s1, t, d1);
    if (d2 > 0) d.set(s2, t, d2);
    return d;
  }
};

TEST(RunningExampleDag, MatchesFigure1c) {
  const RunningExample ex;
  const Dag& dag = (*ex.dags)[ex.t];
  EXPECT_EQ(dag.edges().size(), 5u);
  EXPECT_TRUE(dag.contains(*ex.g.findEdge(ex.s1, ex.s2)));
  EXPECT_TRUE(dag.contains(*ex.g.findEdge(ex.s1, ex.v)));
  EXPECT_TRUE(dag.contains(*ex.g.findEdge(ex.s2, ex.v)));  // tie-break
  EXPECT_TRUE(dag.contains(*ex.g.findEdge(ex.s2, ex.t)));
  EXPECT_TRUE(dag.contains(*ex.g.findEdge(ex.v, ex.t)));
}

// ---------------------------------------------------------------------------

TEST(RoutingConfig, UniformSumsToOne) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  cfg.validate(g);  // must not throw
}

TEST(RoutingConfig, SetRatioOutsideDagThrows) {
  const RunningExample ex;
  // (t has no out-edges in its own DAG; edge v->s2 is not in the DAG).
  const EdgeId vs2 = *ex.g.findEdge(ex.v, ex.s2);
  RoutingConfig cfg(ex.g, ex.dags);
  EXPECT_THROW(cfg.setRatio(ex.t, vs2, 0.5), std::invalid_argument);
}

TEST(RoutingConfig, ValidateCatchesBadSums) {
  const RunningExample ex;
  RoutingConfig cfg(ex.g, ex.dags);
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.s1, ex.s2), 0.9);  // 0.9 != 1
  EXPECT_THROW(cfg.validate(ex.g), std::logic_error);
}

TEST(RoutingConfig, NormalizeRescalesAndFillsUniform) {
  const RunningExample ex;
  RoutingConfig cfg(ex.g, ex.dags);
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.s1, ex.s2), 3.0);
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.s1, ex.v), 1.0);
  cfg.normalize(ex.g);
  EXPECT_NEAR(cfg.ratio(ex.t, *ex.g.findEdge(ex.s1, ex.s2)), 0.75, 1e-12);
  // s2 had no ratios at all -> uniform fallback over its two DAG out-edges.
  EXPECT_NEAR(cfg.ratio(ex.t, *ex.g.findEdge(ex.s2, ex.t)), 0.5, 1e-12);
  cfg.validate(ex.g);
}

// ---------------------------------------------------------------------------

TEST(Propagation, SinglePathCarriesAllDemand) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(1.0, 1.0);  // all via s2 -> t
  const LinkLoads loads = computeLoads(ex.g, cfg, ex.demand(2.0, 0.0));
  EXPECT_NEAR(loads[*ex.g.findEdge(ex.s1, ex.s2)], 2.0, 1e-12);
  EXPECT_NEAR(loads[*ex.g.findEdge(ex.s2, ex.t)], 2.0, 1e-12);
  EXPECT_NEAR(loads[*ex.g.findEdge(ex.v, ex.t)], 0.0, 1e-12);
}

TEST(Propagation, FlowIsConservedAtDestination) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 50.0);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    LinkLoads loads(g.numEdges(), 0.0);
    accumulateDestinationLoads(g, cfg, d, t, loads);
    double into_t = 0.0;
    for (const EdgeId e : g.inEdges(t)) into_t += loads[e];
    double demand_to_t = 0.0;
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      if (s != t) demand_to_t += d.at(s, t);
    }
    EXPECT_NEAR(into_t, demand_to_t, 1e-9) << "t=" << t;
  }
}

TEST(Propagation, MatchesManualComputationOnFig1c) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 2.0 / 3.0);  // Fig. 1c splits
  // D1 = (2,0): load(v,t) = 2*(1 - 1/2 * 2/3) = 4/3.
  const LinkLoads l1 = computeLoads(ex.g, cfg, ex.demand(2.0, 0.0));
  EXPECT_NEAR(l1[*ex.g.findEdge(ex.v, ex.t)], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(l1[*ex.g.findEdge(ex.s2, ex.t)], 2.0 / 3.0, 1e-12);
  // D2 = (0,2): load(s2,t) = 2*2/3 = 4/3.
  const LinkLoads l2 = computeLoads(ex.g, cfg, ex.demand(0.0, 2.0));
  EXPECT_NEAR(l2[*ex.g.findEdge(ex.s2, ex.t)], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(l2[*ex.g.findEdge(ex.v, ex.t)], 2.0 / 3.0, 1e-12);
  // Both worst cases are exactly 4/3 (caption of Fig. 1c).
  EXPECT_NEAR(maxLinkUtilization(ex.g, cfg, ex.demand(2.0, 0.0)), 4.0 / 3.0,
              1e-12);
  EXPECT_NEAR(maxLinkUtilization(ex.g, cfg, ex.demand(0.0, 2.0)), 4.0 / 3.0,
              1e-12);
}

TEST(Propagation, GoldenRatioSplitsGiveSqrt5Minus1) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(kGolden, kGolden);
  EXPECT_NEAR(maxLinkUtilization(ex.g, cfg, ex.demand(2.0, 0.0)),
              std::sqrt(5.0) - 1.0, 1e-9);
  EXPECT_NEAR(maxLinkUtilization(ex.g, cfg, ex.demand(0.0, 2.0)),
              std::sqrt(5.0) - 1.0, 1e-9);
}

TEST(Propagation, SourceFractionsDecomposeLoads) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 10.0);
  // Reconstruct loads from per-pair fractions l_st(e) = f_st(u)*phi_t(e).
  LinkLoads direct = computeLoads(g, cfg, d);
  LinkLoads rebuilt(g.numEdges(), 0.0);
  for (NodeId t = 0; t < g.numNodes(); ++t) {
    for (NodeId s = 0; s < g.numNodes(); ++s) {
      if (s == t || d.at(s, t) <= 0.0) continue;
      const auto f = sourceFractions(g, cfg, s, t);
      for (const EdgeId e : (*dags)[t].edges()) {
        rebuilt[e] += d.at(s, t) * f[g.edge(e).src] * cfg.ratio(t, e);
      }
    }
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EXPECT_NEAR(rebuilt[e], direct[e], 1e-9) << "e=" << e;
  }
}

TEST(Propagation, ExpectedHopCountOnChain) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  g.addLink(a, b);
  g.addLink(b, c);
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig cfg = RoutingConfig::uniform(g, dags);
  EXPECT_NEAR(expectedHopCount(g, cfg, a, c), 2.0, 1e-12);
  EXPECT_NEAR(expectedHopCount(g, cfg, b, c), 1.0, 1e-12);
  EXPECT_NEAR(expectedHopCount(g, cfg, c, c), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------

TEST(Ecmp, EqualSplitOnDiamond) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId c = g.addNode();
  const NodeId d = g.addNode();
  g.addLink(a, b);
  g.addLink(a, c);
  g.addLink(b, d);
  g.addLink(c, d);
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  EXPECT_NEAR(ecmp.ratio(d, *g.findEdge(a, b)), 0.5, 1e-12);
  EXPECT_NEAR(ecmp.ratio(d, *g.findEdge(a, c)), 0.5, 1e-12);
  EXPECT_NEAR(ecmp.ratio(d, *g.findEdge(b, d)), 1.0, 1e-12);
}

TEST(Ecmp, ZeroOnNonShortestDagEdges) {
  const RunningExample ex;
  const RoutingConfig ecmp = ecmpConfig(ex.g, ex.dags);
  // With unit weights, s2's shortest path is the direct edge only; the
  // augmented edge (s2,v) carries ratio 0.
  EXPECT_NEAR(ecmp.ratio(ex.t, *ex.g.findEdge(ex.s2, ex.t)), 1.0, 1e-12);
  EXPECT_NEAR(ecmp.ratio(ex.t, *ex.g.findEdge(ex.s2, ex.v)), 0.0, 1e-12);
}

class EcmpValidOnZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(EcmpValidOnZoo, ConfigValidates) {
  const Graph g = topo::makeZoo(GetParam());
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  ecmp.validate(g);
}

INSTANTIATE_TEST_SUITE_P(Zoo, EcmpValidOnZoo,
                         ::testing::Values("Abilene", "NSF", "Geant",
                                           "Germany", "InternetMCI", "GRNet",
                                           "Gambia", "BBNPlanet"));

// ---------------------------------------------------------------------------

TEST(Optu, TwoDisjointPaths) {
  const RunningExample ex;
  // D1 = (2,0) can be routed at utilization 1 inside the Fig. 1c DAG.
  EXPECT_NEAR(optimalUtilization(ex.g, *ex.dags, ex.demand(2.0, 0.0)), 1.0,
              1e-7);
  EXPECT_NEAR(optimalUtilization(ex.g, *ex.dags, ex.demand(0.0, 2.0)), 1.0,
              1e-7);
  EXPECT_NEAR(optimalUtilization(ex.g, *ex.dags, ex.demand(1.0, 1.0)), 1.0,
              1e-7);
}

TEST(Optu, ScalesLinearly) {
  const RunningExample ex;
  const double u1 = optimalUtilization(ex.g, *ex.dags, ex.demand(1.0, 0.5));
  const double u2 = optimalUtilization(ex.g, *ex.dags, ex.demand(2.0, 1.0));
  EXPECT_NEAR(u2, 2.0 * u1, 1e-6);
}

TEST(Optu, UnrestrictedNeverWorseThanDagRestricted) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 20.0);
  const double dag_u = optimalUtilization(g, *dags, d);
  const double any_u = optimalUtilizationUnrestricted(g, d);
  EXPECT_LE(any_u, dag_u + 1e-6);
  EXPECT_GT(any_u, 0.0);
}

TEST(Optu, OptimalRoutingAchievesAlpha) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 30.0);
  const OptimalRouting opt = optimalRoutingForDemand(g, dags, d);
  EXPECT_GT(opt.utilization, 0.0);
  EXPECT_NEAR(maxLinkUtilization(g, opt.routing, d), opt.utilization, 1e-5);
}

TEST(Optu, OptimalBeatsOrMatchesEcmp) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 10.0);
  const double opt = optimalUtilization(g, *dags, d);
  const double ecmp = maxLinkUtilization(g, ecmpConfig(g, dags), d);
  EXPECT_LE(opt, ecmp + 1e-9);
}

TEST(Optu, ThrowsWhenDemandNotRoutableInDag) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(a, t);
  g.addEdge(b, a);  // b can reach t only through a
  DagSet dags;
  for (NodeId dest = 0; dest < 3; ++dest) {
    std::vector<EdgeId> edges;
    if (dest == t) edges = {*g.findEdge(a, t)};  // b's edge omitted
    dags.emplace_back(g, dest, std::move(edges));
  }
  tm::TrafficMatrix d(3);
  d.set(b, t, 1.0);
  EXPECT_THROW((void)optimalUtilization(g, dags, d), std::invalid_argument);
}

// ---------------------------------------------------------------------------

tm::DemandBounds twoUserBox(const RunningExample& ex) {
  // Only s1 and s2 may send traffic (to t), with a free scale -- the
  // "two network users" demand space of Sec. II / Appendix B.
  tm::TrafficMatrix lo(ex.g.numNodes());
  tm::TrafficMatrix hi(ex.g.numNodes());
  hi.set(ex.s1, ex.t, 1.0);
  hi.set(ex.s2, ex.t, 1.0);
  return {lo, hi};
}

TEST(WorstCase, GoldenRoutingHasOptimalObliviousRatio) {
  const RunningExample ex;
  const RoutingConfig golden = ex.config(kGolden, kGolden);
  const tm::DemandBounds box = twoUserBox(ex);
  const WorstCaseResult wc = findWorstCaseDemand(ex.g, golden, &box);
  EXPECT_NEAR(wc.ratio, std::sqrt(5.0) - 1.0, 1e-5);
}

TEST(WorstCase, Fig1cRoutingHasRatioFourThirds) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 2.0 / 3.0);
  const tm::DemandBounds box = twoUserBox(ex);
  const WorstCaseResult wc = findWorstCaseDemand(ex.g, cfg, &box);
  EXPECT_NEAR(wc.ratio, 4.0 / 3.0, 1e-5);
}

TEST(WorstCase, WorstDemandIsRoutableWithinCapacities) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 0.5);
  const WorstCaseResult wc = findWorstCaseDemand(ex.g, cfg);
  EXPECT_GT(wc.ratio, 1.0);
  EXPECT_LE(optimalUtilization(ex.g, *ex.dags, wc.demand), 1.0 + 1e-6);
  // The reported ratio is exactly the utilization cfg suffers on it.
  EXPECT_NEAR(maxLinkUtilization(ex.g, cfg, wc.demand), wc.ratio, 1e-6);
}

TEST(WorstCase, UnloadableEdgeHasRatioZero) {
  // An edge that no routing entry ever uses admits no adversarial demand;
  // the slave LP must report 0 instead of building an empty LP.
  const RunningExample ex;
  routing::RoutingConfig cfg(ex.g, ex.dags);
  // Route only toward t, all direct: s1->v->t unused beyond v->t; the
  // remaining destinations get no ratios at all (empty problem rows).
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.s1, ex.s2), 1.0);
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.s2, ex.t), 1.0);
  cfg.setRatio(ex.t, *ex.g.findEdge(ex.v, ex.t), 1.0);
  const EdgeId s1v = *ex.g.findEdge(ex.s1, ex.v);
  const WorstCaseResult wc = findWorstCaseDemandForEdge(ex.g, cfg, s1v);
  EXPECT_DOUBLE_EQ(wc.ratio, 0.0);
  EXPECT_DOUBLE_EQ(wc.demand.total(), 0.0);
}

TEST(WorstCase, BoxRestrictsTheAdversary) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 1.0);
  // Unrestricted adversary vs. one confined near the balanced demand.
  tm::TrafficMatrix base(ex.g.numNodes());
  base.set(ex.s1, ex.t, 1.0);
  base.set(ex.s2, ex.t, 1.0);
  const tm::DemandBounds tight = tm::marginBounds(base, 1.0);
  const WorstCaseResult free_adv = findWorstCaseDemand(ex.g, cfg);
  const WorstCaseResult tight_adv = findWorstCaseDemand(ex.g, cfg, &tight);
  EXPECT_GE(free_adv.ratio, tight_adv.ratio - 1e-9);
}

TEST(WorstCase, SingleEdgeQuery) {
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 1.0);
  const tm::DemandBounds box = twoUserBox(ex);
  const EdgeId s2t = *ex.g.findEdge(ex.s2, ex.t);
  const WorstCaseResult wc = findWorstCaseDemandForEdge(ex.g, cfg, s2t, &box);
  // With only s1/s2 sending to t: max 0.5*d1 + d2 subject to d1 + d2 <= 2
  // (the cut into t) is attained at d = (0,2) with utilization 2.
  EXPECT_NEAR(wc.ratio, 2.0, 1e-5);
  EXPECT_EQ(wc.edge, s2t);
  EXPECT_NEAR(wc.demand.at(ex.s2, ex.t), 2.0, 1e-5);
}

TEST(WorstCase, FullScanMatchesPerEdgeQueries) {
  // findWorstCaseDemand fans the per-edge LPs out on the thread pool;
  // its result must equal the serial per-edge scan, ties resolving to
  // the lowest edge id.
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 1.0);
  const tm::DemandBounds box = twoUserBox(ex);
  const WorstCaseResult all = findWorstCaseDemand(ex.g, cfg, &box);
  double best = -1.0;
  EdgeId arg = kInvalidEdge;
  for (EdgeId e = 0; e < ex.g.numEdges(); ++e) {
    const double r = findWorstCaseDemandForEdge(ex.g, cfg, e, &box).ratio;
    if (r > best) {
      best = r;
      arg = e;
    }
  }
  EXPECT_EQ(all.edge, arg);
  EXPECT_DOUBLE_EQ(all.ratio, best);
}

TEST(WorstCase, CrossDestinationTrafficRaisesTheObliviousRatio) {
  // Without the two-user restriction the adversary may also route demands
  // toward other destinations across (s2,t); the oblivious ratio can only
  // grow.
  const RunningExample ex;
  const RoutingConfig cfg = ex.config(0.5, 1.0);
  const tm::DemandBounds box = twoUserBox(ex);
  const EdgeId s2t = *ex.g.findEdge(ex.s2, ex.t);
  const double boxed = findWorstCaseDemandForEdge(ex.g, cfg, s2t, &box).ratio;
  const double free_ratio = findWorstCaseDemandForEdge(ex.g, cfg, s2t).ratio;
  EXPECT_GE(free_ratio, boxed - 1e-9);
}

// ---------------------------------------------------------------------------

TEST(Evaluator, NormalizesToUnitOptu) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  PerformanceEvaluator eval(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 123.0);
  ASSERT_EQ(eval.addMatrix(d), 0);
  EXPECT_NEAR(optimalUtilization(g, *dags, eval.matrix(0)), 1.0, 1e-6);
  // The optimal routing for that matrix evaluates to ratio ~1.
  const OptimalRouting opt = optimalRoutingForDemand(g, dags, d);
  EXPECT_NEAR(eval.ratioFor(opt.routing), 1.0, 1e-5);
}

TEST(Evaluator, DeduplicatesAndSkipsZero) {
  const Graph g = topo::makeZoo("Abilene");
  const auto dags = core::augmentedDagsShared(g);
  PerformanceEvaluator eval(g, dags);
  const tm::TrafficMatrix d = tm::gravityMatrix(g, 1.0);
  EXPECT_EQ(eval.addMatrix(d), 0);
  EXPECT_EQ(eval.addMatrix(d), -1);  // duplicate
  EXPECT_EQ(eval.addMatrix(tm::TrafficMatrix(g.numNodes())), -1);  // zero
  EXPECT_EQ(eval.size(), 1);
}

TEST(Evaluator, WorstReportsArgmax) {
  const RunningExample ex;
  PerformanceEvaluator eval(ex.g, ex.dags);
  ASSERT_EQ(eval.addMatrix(ex.demand(2.0, 0.0)), 0);
  ASSERT_EQ(eval.addMatrix(ex.demand(0.0, 2.0)), 1);
  // All-direct-ish routing is bad for D2 (everything through (s2,t)).
  const RoutingConfig cfg = ex.config(1.0, 1.0);
  const auto [idx, ratio] = eval.worst(cfg);
  EXPECT_EQ(idx, 0);  // D1 pushes 2 units through (s1,s2)->(s2,t)
  EXPECT_NEAR(ratio, 2.0, 1e-6);
}

// ---------------------------------------------------------------------------

TEST(Stretch, IdentityIsOne) {
  const Graph g = topo::makeZoo("NSF");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  EXPECT_NEAR(averageStretch(g, ecmp, ecmp), 1.0, 1e-12);
}

TEST(Stretch, UniformAugmentedIsLongerThanEcmp) {
  const Graph g = topo::makeZoo("Geant");
  const auto dags = core::augmentedDagsShared(g);
  const RoutingConfig ecmp = ecmpConfig(g, dags);
  const RoutingConfig uni = RoutingConfig::uniform(g, dags);
  // Spreading over every augmented edge takes detours.
  EXPECT_GT(averageStretch(g, uni, ecmp), 1.0);
}

}  // namespace
}  // namespace coyote::routing
